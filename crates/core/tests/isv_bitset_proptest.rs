//! Property test: the ISV's dense-bitset membership representation must
//! agree exactly with a plain `HashSet` oracle built from the same
//! function set — for `contains_func` over every function id (including
//! out-of-range ids) and for `contains_va` over entry, interior,
//! alignment-padding, and stub-range addresses.

use persp_kernel::body::emit_kernel;
use persp_kernel::callgraph::{CallGraph, FuncId, KernelConfig};
use persp_kernel::layout::KTEXT_BASE;
use perspective::isv::{Isv, IsvKind};
use proptest::prelude::*;
use std::collections::HashSet;

thread_local! {
    /// One emitted small kernel per test thread — generation dominates
    /// the test's cost, and the graph is immutable after emission.
    static GRAPH: CallGraph = {
        let mut g = CallGraph::generate(KernelConfig::test_small());
        emit_kernel(&mut g);
        g
    };
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    fn bitset_membership_agrees_with_hashset_oracle(
        picks in proptest::collection::vec(0u32..10_000, 0..160),
    ) {
        GRAPH.with(|g| {
            let n = g.len() as u32;
            let oracle: HashSet<FuncId> =
                picks.iter().map(|&i| FuncId(i % n)).collect();
            let isv = Isv::from_func_set(g, oracle.clone(), IsvKind::Dynamic);

            // contains_func over the whole id space, plus out-of-range ids.
            for f in (0..n).chain([n, n + 63, u32::MAX - 1]) {
                let f = FuncId(f);
                prop_assert_eq!(
                    isv.contains_func(f),
                    oracle.contains(&f),
                    "contains_func({:?})",
                    f
                );
            }
            Ok(())
        })?;
    }

    fn bitset_va_probes_agree_with_hashset_oracle(
        picks in proptest::collection::vec(0u32..10_000, 1..120),
        offsets in proptest::collection::vec(0u64..64, 8),
    ) {
        GRAPH.with(|g| {
            let n = g.len() as u32;
            let oracle: HashSet<FuncId> =
                picks.iter().map(|&i| FuncId(i % n)).collect();
            let isv = Isv::from_func_set(g, oracle.clone(), IsvKind::Dynamic);

            // Probe a spread of functions at entry + interior offsets.
            for (k, &off) in offsets.iter().enumerate() {
                let f = FuncId((picks[k % picks.len()] * 7 + k as u32) % n);
                let kf = g.func(f);
                let interior = off.min(u64::from(kf.len_insts) - 1) * 4;
                for va in [kf.entry_va, kf.entry_va + interior] {
                    prop_assert_eq!(
                        isv.contains_va(va),
                        oracle.contains(&f),
                        "contains_va({:#x}) of {:?}",
                        va,
                        f
                    );
                }
            }

            // The dispatch stub is part of every view.
            prop_assert!(isv.contains_va(KTEXT_BASE));
            prop_assert!(isv.contains_va(KTEXT_BASE + 0xFFF));
            Ok(())
        })?;
    }

    fn exclusion_clears_bitset_and_oracle_alike(
        picks in proptest::collection::vec(0u32..10_000, 4..64),
        victim_idx in 0usize..4,
    ) {
        GRAPH.with(|g| {
            let n = g.len() as u32;
            let mut oracle: HashSet<FuncId> =
                picks.iter().map(|&i| FuncId(i % n)).collect();
            let mut isv = Isv::from_func_set(g, oracle.clone(), IsvKind::Dynamic);

            let victim = FuncId(picks[victim_idx] % n);
            prop_assert!(isv.exclude_function(g, victim));
            oracle.remove(&victim);

            prop_assert!(!isv.contains_func(victim));
            prop_assert!(!isv.contains_va(g.func(victim).entry_va));
            for &f in &oracle {
                prop_assert!(isv.contains_func(f), "survivor {:?} stays", f);
            }
            Ok(())
        })?;
    }
}
