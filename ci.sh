#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, build, and the full test suite on the
# small kernel. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (PERSPECTIVE_KERNEL=small)"
PERSPECTIVE_KERNEL=small cargo test -q --release

echo "ci: all gates passed"
