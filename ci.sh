#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, build, and the full test suite on the
# small kernel. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy --release (warnings are errors)"
cargo clippy --workspace --release -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (PERSPECTIVE_KERNEL=small)"
PERSPECTIVE_KERNEL=small cargo test -q --release

echo "==> experiment --json output vs checked-in baselines (small kernel)"
mkdir -p target/bench-json
for exp in fig_9_2 table_10_1; do
    PERSPECTIVE_KERNEL=small PERSPECTIVE_THREADS=4 \
        ./target/release/"$exp" --json >"target/bench-json/$exp.json"
    ./target/release/json_check <"target/bench-json/$exp.json"
    if ! diff -u "BENCH_$exp.json" "target/bench-json/$exp.json"; then
        echo "ci: $exp --json drifted from BENCH_$exp.json" >&2
        echo "ci: if the change is intended, regenerate the baseline (see EXPERIMENTS.md)" >&2
        exit 1
    fi
done

echo "==> fast-vs-slow differential smoke cell (PERSPECTIVE_NO_FASTFWD=1)"
# The idle-cycle fast-forward must be invisible in every serialized
# counter: the cycle-by-cycle slow path has to reproduce the checked-in
# baselines byte for byte.
for exp in fig_9_2 table_10_1; do
    PERSPECTIVE_KERNEL=small PERSPECTIVE_THREADS=4 PERSPECTIVE_NO_FASTFWD=1 \
        ./target/release/"$exp" --json >"target/bench-json/$exp.slow.json"
    ./target/release/json_check <"target/bench-json/$exp.slow.json"
    if ! diff -u "BENCH_$exp.json" "target/bench-json/$exp.slow.json"; then
        echo "ci: $exp --json differs with the fast-forward disabled" >&2
        echo "ci: the fast-forward must be cycle-exact; this is a pipeline bug, not a baseline drift" >&2
        exit 1
    fi
done

echo "==> cell cache: cold, warm, and verify runs are byte-identical (small kernel)"
# Cold-populate a throwaway cache, then re-run warm: both documents must
# match each other AND the checked-in baselines exactly (hit/miss
# counters are stderr-only observability, never part of the document).
# A verify pass then recomputes every cell and asserts the stored
# entries re-serialize byte-identically — a forgotten SIM_VERSION bump
# fails here before it can poison anyone's cache.
rm -rf target/persp-cache-ci
for exp in fig_9_2 table_10_1; do
    for mode in on on verify; do
        PERSPECTIVE_KERNEL=small PERSPECTIVE_THREADS=4 \
            PERSPECTIVE_CACHE=$mode PERSPECTIVE_CACHE_DIR=target/persp-cache-ci \
            ./target/release/"$exp" --json >"target/bench-json/$exp.cache-$mode.json"
        ./target/release/json_check <"target/bench-json/$exp.cache-$mode.json"
        if ! diff -u "BENCH_$exp.json" "target/bench-json/$exp.cache-$mode.json"; then
            echo "ci: $exp --json differs under PERSPECTIVE_CACHE=$mode" >&2
            echo "ci: cached runs must be byte-identical to cold runs and the baseline" >&2
            exit 1
        fi
    done
done
if ! ls target/persp-cache-ci/cell-*.json >/dev/null 2>&1; then
    echo "ci: cache runs completed but no cell entries were written" >&2
    exit 1
fi

echo "==> sni_check smoke run (small kernel): clean + canned fault plans"
# The binary exits nonzero unless clean Perspective runs show zero SNI
# violations, the UNSAFE baseline is flagged, the attack scenario leaks
# only under UNSAFE, and 100% of injected faults are detected.
PERSPECTIVE_KERNEL=small PERSPECTIVE_THREADS=4 \
    ./target/release/sni_check --json >target/bench-json/sni_check.json
./target/release/json_check <target/bench-json/sni_check.json

echo "ci: all gates passed"
