//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the *subset* of the `rand` 0.8 API it actually
//! uses: seedable deterministic generators ([`rngs::SmallRng`],
//! [`rngs::StdRng`]) and the [`Rng`] convenience methods `gen_range`,
//! `gen_bool`, and `gen`. Everything is deterministic given the seed —
//! there is no OS entropy source — which is exactly what the synthetic
//! kernel generator and the benches rely on.
//!
//! [`rngs::SmallRng`] is **bit-compatible with `rand` 0.8.5** on 64-bit
//! targets for the methods above: the engine is xoshiro256++ seeded
//! through splitmix64, `next_u32` takes the upper half of `next_u64`,
//! `gen_range` uses the widening-multiply rejection sampler
//! (`UniformInt::sample_single_inclusive`) with the same per-width
//! `$u_large` lane types, and `gen_bool` is the fixed-point Bernoulli
//! compare. The seeded kernels the generator grows are therefore the
//! same ones the crates-io build would grow. `StdRng` is *not*
//! bit-compatible (upstream uses ChaCha12; here it is the same xoshiro
//! engine under a distinct seed schedule) — it only backs benches,
//! which need determinism, not stream parity.

#![forbid(unsafe_code)]

/// Low-level generator interface: a source of random words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits. Upper half of [`RngCore::next_u64`] —
    /// the choice `rand`'s xoshiro256++ makes, because the low bits of
    /// the `++` scrambler are weaker.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types into which a range can be sampled by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// `UniformInt::sample_single_inclusive` from `rand` 0.8.5: Lemire's
/// widening-multiply rejection method. Each width draws its upstream
/// `$u_large` lane (`next_u32` for 8/16/32-bit types, `next_u64` for
/// 64-bit ones) and widens through `$wide` for the multiply. The
/// rejection zone is exact (modulo) for 8/16-bit types and the
/// conservative power-of-two approximation for wider ones — upstream's
/// split, and the streams only match if both halves are reproduced.
macro_rules! impl_sample_range {
    ($($ty:ty, $unsigned:ty, $u_large:ty, $wide:ty, $next:ident, $small:expr);* $(;)?) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                (self.start..=self.end - 1).sample_single(rng)
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "cannot sample empty range");
                let range =
                    high.wrapping_sub(low).wrapping_add(1) as $unsigned as $u_large;
                if range == 0 {
                    // Full lane span: one raw draw, no rejection
                    // (upstream's `return rng.gen()`).
                    return rng.$next() as $ty;
                }
                let zone: $u_large = if $small {
                    let ints_to_reject = (<$u_large>::MAX - range + 1) % range;
                    <$u_large>::MAX - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v = rng.$next() as $u_large;
                    let t = (v as $wide) * (range as $wide);
                    let hi = (t >> <$u_large>::BITS) as $u_large;
                    let lo = t as $u_large;
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    )*};
}

impl_sample_range! {
    u8, u8, u32, u64, next_u32, true;
    u16, u16, u32, u64, next_u32, true;
    u32, u32, u32, u64, next_u32, false;
    u64, u64, u64, u128, next_u64, false;
    usize, usize, u64, u128, next_u64, false;
    i8, u8, u32, u64, next_u32, true;
    i16, u16, u32, u64, next_u32, true;
    i32, u32, u32, u64, next_u32, false;
    i64, u64, u64, u128, next_u64, false;
    isize, usize, u64, u128, next_u64, false;
}

pub mod distributions {
    //! The `Standard` distribution: `rng.gen::<T>()` support.

    use crate::RngCore;

    /// A distribution over a type's "natural" uniform values.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard uniform distribution (what `Rng::gen` samples).
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits in [0, 1) (upstream's
            // multiply-based method).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            // Most significant bit of a u32 draw, as upstream.
            rng.next_u32() & (1 << 31) != 0
        }
    }

    macro_rules! impl_standard_int32 {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u32() as $t
                }
            }
        )*};
    }

    macro_rules! impl_standard_int64 {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    // Lane widths as in upstream `impl_int_from_uint!`: 8/16/32-bit
    // types consume one `next_u32`, 64-bit types one `next_u64`.
    impl_standard_int32!(u8, u16, u32, i8, i16, i32);
    impl_standard_int64!(u64, usize, i64, isize);
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value from a (half-open or inclusive) range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` — the fixed-point Bernoulli compare
    /// from upstream (`v < (p * 2^64) as u64` over one `u64` draw).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        const ALWAYS_TRUE: u64 = u64::MAX;
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        let p_int = if p < 1.0 {
            (p * SCALE) as u64
        } else {
            ALWAYS_TRUE
        };
        if p_int == ALWAYS_TRUE {
            return true;
        }
        self.next_u64() < p_int
    }

    /// A value from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        Self: Sized,
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ core state.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256 { s }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

pub mod rngs {
    //! The named generators the workspace uses.

    use super::{RngCore, SeedableRng, Xoshiro256};

    /// A small, fast, deterministic generator (xoshiro256++), stream-
    /// compatible with `rand` 0.8.5's 64-bit `SmallRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng(Xoshiro256);

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(Xoshiro256::seed_from_u64(seed))
        }
    }

    /// The "standard" generator. Offline stand-in: same engine as
    /// [`SmallRng`] under a different seed schedule, which is all the
    /// deterministic benches need (upstream's ChaCha12 stream is not
    /// reproduced).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng(Xoshiro256);

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::seed_from_u64(seed ^ 0xA076_1D64_78BD_642F))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    /// Seeding + engine cross-check, derived by hand (not from this
    /// code): seed 0 runs splitmix64 from state 0, whose published
    /// first four outputs are 0xE220A8397B1DCDAF, 0x6E789E6AA1B965F4,
    /// 0x06C45D188009454F, 0xF88BB8A8724C81EC — the xoshiro256++ state.
    /// The first output is then rotl64(s0 + s3, 23) + s0.
    #[test]
    fn engine_matches_hand_derived_seed0_output() {
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(rng.next_u64(), 0x5317_5D61_490B_23DF);
    }

    #[test]
    fn next_u32_is_upper_half() {
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        for _ in 0..16 {
            assert_eq!(a.next_u32(), (b.next_u64() >> 32) as u32);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5usize..=7);
            assert!((5..=7).contains(&w));
            let s = rng.gen_range(-4i32..5);
            assert!((-4..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "{hits}");
    }

    #[test]
    fn gen_bool_edge_probabilities() {
        let mut rng = SmallRng::seed_from_u64(5);
        assert!((0..64).all(|_| rng.gen_bool(1.0)));
        assert!(!(0..64).any(|_| rng.gen_bool(0.0)));
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 100_000.0;
        assert!((0.45..0.55).contains(&mean), "{mean}");
    }

    /// Distribution sanity for the Lemire sampler: a 3-wide range out of
    /// a seeded stream must hit every value with near-uniform frequency.
    #[test]
    fn gen_range_is_uniform() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[rng.gen_range(0usize..3)] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "{counts:?}");
        }
    }
}
