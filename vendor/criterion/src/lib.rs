//! Offline stand-in for the `criterion` crate.
//!
//! The build container cannot fetch crates.io, so this crate provides
//! the subset of criterion's API the workspace benches use —
//! [`Criterion`], [`criterion_group!`]/[`criterion_main!`],
//! benchmark groups, [`BenchmarkId`], and [`Bencher::iter`] — backed by
//! a small fixed-budget timing harness instead of criterion's full
//! statistical machinery. Results print as `name: median ns/iter` lines,
//! enough to track relative regressions in the bench trajectory.
//!
//! Respects `CRITERION_QUICK=1` to cut sample counts for smoke runs.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark (split across samples).
const TARGET_TOTAL: Duration = Duration::from_millis(400);
/// Samples per benchmark (the median is reported).
const DEFAULT_SAMPLES: usize = 11;

/// The benchmark driver.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::var("CRITERION_QUICK").is_ok();
        Criterion {
            samples: if quick { 3 } else { DEFAULT_SAMPLES },
        }
    }
}

impl Criterion {
    /// Accept (and ignore) CLI arguments, as the real crate does.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Override the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.samples, f);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            samples: self.samples,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&full, self.samples, f);
        self
    }

    /// Run one parameterized benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_benchmark(&full, self.samples, |b| f(b, input));
        self
    }

    /// Finish the group (formatting no-op).
    pub fn finish(self) {}
}

/// A benchmark identifier (function name and/or parameter).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{parameter}", function_name.into()))
    }

    /// Parameter-only identifier.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Conversion into a benchmark identifier (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered identifier.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.0
    }
}

/// Passed to the benchmark closure; times the hot loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, called `self.iters` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    // Calibrate the per-sample iteration count against one probe call.
    let mut probe = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut probe);
    let per_iter = probe.elapsed.max(Duration::from_nanos(1));
    let budget = TARGET_TOTAL / samples.max(1) as u32;
    let iters = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = times[times.len() / 2];
    println!("{name}: {median:.1} ns/iter ({iters} iters x {samples} samples)");
}

/// Declare a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Declare the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        c.sample_size(2);
        let mut runs = 0u64;
        c.bench_function("smoke/add", |b| {
            b.iter(|| black_box(1u64) + black_box(2u64));
            runs += 1;
        });
        assert!(runs >= 2, "closure re-invoked per sample");
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::from_parameter("x"), &3u64, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        g.bench_function(BenchmarkId::new("f", 7), |b| b.iter(|| black_box(7)));
        g.finish();
    }
}
