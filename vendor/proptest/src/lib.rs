//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so this crate implements
//! the subset of proptest's API the workspace tests use: the
//! [`strategy::Strategy`] trait with `prop_map`, range / tuple / `Just` /
//! [`any`] strategies, [`collection::vec`], the [`prop_oneof!`] union
//! macro, and the [`proptest!`] test-harness macro with
//! `#![proptest_config(..)]`.
//!
//! Semantics differ from real proptest in one deliberate way: failing
//! inputs are **not shrunk** — a failing case panics with the generated
//! values' `Debug` output instead. Generation is fully deterministic,
//! seeded per test from the test's module path and name, so failures
//! reproduce exactly across runs.

#![forbid(unsafe_code)]

/// Runtime configuration for a `proptest!` block.
///
/// Mirrors the fields the workspace sets on proptest's
/// `test_runner::Config`. `max_shrink_iters` is accepted for source
/// compatibility; this harness never shrinks.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test function.
    pub cases: u32,
    /// Accepted for compatibility; unused (no shrinking here).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    /// A config that differs from the default only in case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

pub mod test_runner {
    //! The deterministic source of randomness behind `proptest!`.

    pub use crate::ProptestConfig as Config;
    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    /// Failure raised by `prop_assert!`-family macros. Test bodies run as
    /// `Result<(), TestCaseError>` closures, so `?` works inside them as
    /// it does under real proptest.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failed-case error with the given reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Deterministic generator handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(SmallRng);

    impl TestRng {
        /// Seed from a test's fully qualified name, so every test owns a
        /// stable, independent random stream.
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(SmallRng::seed_from_u64(h))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// A recipe for generating random values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value *tree* — strategies
    /// produce plain values and failures are not shrunk.
    pub trait Strategy {
        /// The type this strategy generates.
        type Value;

        /// Generate one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            (**self).new_value(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            (**self).new_value(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.new_value(rng))
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternative strategies
    /// (built by [`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Build from non-empty alternatives.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].new_value(rng)
        }
    }

    /// Box a strategy as a [`Union`] arm (used by `prop_oneof!`).
    pub fn boxed_arm<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Types with a canonical "any value" strategy (see [`any`]).
    pub trait Arbitrary {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.gen()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            core::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// Strategy over all values of `T` (returned by [`any`]).
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The strategy generating arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Accepted vector-length specifications: `a..b` or an exact count.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        start: usize,
        end: usize, // exclusive
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                start: *r.start(),
                end: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a random in-range length.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.start..self.size.end);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A vector of values from `element`, sized by `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! Everything a proptest-using test file needs in scope.

    pub use crate::collection;
    pub use crate::strategy::{any, Any, Arbitrary, Just, Map, Strategy, Union};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// `prop::collection::vec(..)`-style paths.
    pub use crate as prop;
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed_arm($arm)),+])
    };
}

/// Assert inside a `proptest!` body: early-returns a
/// [`test_runner::TestCaseError`] (the body is a `Result` closure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{left:?}`\n right: `{right:?}`",
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)*),
        );
    }};
}

/// Inequality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  left: `{left:?}`\n right: `{right:?}`",
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)*),
        );
    }};
}

/// Declare property tests: each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` that runs `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let strategy = ($(($strat),)+);
                for case in 0..config.cases {
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::new_value(&strategy, &mut rng);
                    let outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest case {case} of {}: {e}", config.cases);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_and_map_compose() {
        let mut rng = TestRng::from_name("compose");
        let s = (0u8..4, 10u64..20).prop_map(|(a, b)| (a as u64) * 100 + b);
        for _ in 0..1000 {
            let v = s.new_value(&mut rng);
            assert!((10..320).contains(&v));
            assert!((10..20).contains(&(v % 100)));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = TestRng::from_name("oneof");
        let s = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.new_value(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    #[test]
    fn vec_respects_both_size_forms() {
        let mut rng = TestRng::from_name("vec");
        let ranged = collection::vec(0u64..5, 1..8);
        let exact = collection::vec(any::<bool>(), 3usize);
        for _ in 0..200 {
            let v = ranged.new_value(&mut rng);
            assert!((1..8).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
            assert_eq!(exact.new_value(&mut rng).len(), 3);
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let s = collection::vec(any::<u64>(), 4usize);
        let mut a = TestRng::from_name("same");
        let mut b = TestRng::from_name("same");
        assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// The macro itself: multiple args, trailing comma, config.
        #[test]
        fn macro_form_generates_in_range(
            xs in prop::collection::vec(0u32..7, 1..5),
            flag in any::<bool>(),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 5);
            for x in xs {
                prop_assert!(x < 7, "x={x} flag={flag}");
            }
        }
    }

    proptest! {
        #[test]
        fn macro_form_without_config(seed in any::<[u64; 2]>()) {
            prop_assert_eq!(seed.len(), 2);
        }
    }
}
