//! Quickstart: protect a kernel with Perspective and run a workload.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the mini-OS with Perspective's allocation-ownership sink wired
//! in, generates a dynamic ISV for a small application from a real
//! execution trace, and compares the protected run against the
//! unprotected baseline.

use persp_kernel::callgraph::KernelConfig;
use persp_workloads::{lebench, runner, Workload};
use perspective::scheme::Scheme;

fn main() {
    // A Linux-scale kernel: 28 000 functions, 1533 planted gadgets.
    // (Use KernelConfig::test_small() for a fast toy kernel.)
    let kcfg = KernelConfig::paper();
    let workload: Workload = lebench::by_name("small-read").expect("suite entry");

    println!(
        "workload: {} (syscalls: {:?})",
        workload.name,
        workload.syscall_profile()
    );
    println!();

    // Measure under the unprotected baseline and under Perspective.
    // `measure` runs a warmup (which doubles as the dynamic-ISV profiling
    // trace), installs the view, and measures the region of interest.
    let baseline = runner::measure(Scheme::Unsafe, kcfg, &workload);
    let protected = runner::measure(Scheme::Perspective, kcfg, &workload);

    println!("UNSAFE      : {:>9} cycles", baseline.stats.cycles);
    println!(
        "PERSPECTIVE : {:>9} cycles  ({:+.2}% overhead)",
        protected.stats.cycles,
        100.0 * runner::overhead(&protected, &baseline)
    );
    println!();

    let isv_funcs = protected.isv_funcs.expect("perspective run has a view");
    println!("dynamic ISV: {isv_funcs} of 28000 kernel functions may speculate");
    let fences = protected.fences.expect("perspective run attributes fences");
    println!(
        "fences: {} ISV, {} DSV, {} unknown-ownership",
        fences.isv, fences.dsv, fences.unknown
    );
    println!(
        "ISV cache hit rate {:.1}%, DSVMT cache hit rate {:.1}%",
        100.0 * protected.isv_cache.unwrap().hit_rate(),
        100.0 * protected.dsvmt_cache.unwrap().hit_rate()
    );
}
