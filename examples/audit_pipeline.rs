//! Audit pipeline: ISVs as an accelerator for kernel gadget scanning, and
//! the pliable runtime interface for CVE response.
//!
//! ```sh
//! cargo run --release --example audit_pipeline
//! ```
//!
//! Reproduces the §5.4/§6.1 workflow:
//! 1. generate a workload's dynamic ISV from a trace;
//! 2. bound the Kasper-style scanner to the view (drastically smaller
//!    search space);
//! 3. harden the view with the findings (ISV++ blocks every identified
//!    gadget);
//! 4. respond to a "new CVE" at runtime by excluding the affected
//!    function from the installed view — no kernel patch, no reboot.

use persp_bench::trace_workload;
use persp_kernel::callgraph::KernelConfig;
use persp_kernel::kernel::KernelImage;
use persp_scanner::{scan_bounded, scan_kernel};
use persp_workloads::lebench;
use perspective::isv::Isv;
use perspective::scheme::Scheme;

fn main() {
    let image = KernelImage::build(KernelConfig::paper());
    let workload = lebench::by_name("small-read").expect("suite entry");

    // 1. Dynamic ISV from a real execution trace.
    let trace = trace_workload(&image, &workload);
    let inst = persp_workloads::SimInstance::from_image(Scheme::Perspective, &image);
    let kernel = inst.kernel.borrow();
    let graph = &kernel.graph;
    let isv = Isv::dynamic_from_funcs(graph, trace);
    println!(
        "dynamic ISV: {} of {} kernel functions ({:.1}% surface reduction)",
        isv.num_funcs(),
        graph.len(),
        100.0 * isv.surface_reduction(graph)
    );

    // 2. Bounded vs. whole-kernel scanning.
    let fetch = |pc: u64| inst.core.machine.inst_at(pc);
    let full = scan_kernel(graph, fetch);
    let bounded = scan_bounded(graph, isv.funcs(), fetch);
    println!(
        "whole-kernel scan: {} findings over {} functions ({} insts examined)",
        full.findings.len(),
        full.functions_scanned,
        full.insts_scanned
    );
    println!(
        "ISV-bounded scan : {} findings over {} functions ({} insts, {:.1}x less analysis)",
        bounded.findings.len(),
        bounded.functions_scanned,
        bounded.insts_scanned,
        full.insts_scanned as f64 / bounded.insts_scanned.max(1) as f64
    );

    // 3. ISV++: exclude every flagged function.
    let hardened = isv
        .clone()
        .hardened_with_audit(graph, bounded.flagged_functions());
    let remaining = graph.gadgets_within(hardened.funcs()).len();
    println!(
        "ISV++: {} functions, {} reachable gadgets remaining (paper: 0)",
        hardened.num_funcs(),
        remaining
    );

    // 4. Runtime CVE response through the pliable interface.
    let victim_func = *hardened.funcs().iter().next().expect("nonempty view");
    drop(kernel);
    let perspective = inst.perspective.as_ref().expect("perspective scheme");
    perspective.install_isv(inst.asid, hardened);
    let kernel = inst.kernel.borrow();
    println!();
    println!(
        "new CVE lands in `{}` — excluding it from the live view ...",
        kernel.graph.func(victim_func).name
    );
    let was_present = perspective.exclude_function(inst.asid, &kernel.graph, victim_func);
    assert!(was_present);
    perspective.with_isv(inst.asid, |v| {
        assert!(!v.unwrap().contains_func(victim_func));
    });
    println!("done: the function can no longer execute speculatively in this context,");
    println!("with no kernel patch and no downtime (§5.4).");
}
