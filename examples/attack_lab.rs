//! Attack lab: run the paper's active and passive transient execution
//! attack PoCs with and without Perspective.
//!
//! ```sh
//! cargo run --release --example attack_lab
//! ```
//!
//! The active attack is Spectre v1 from the attacker's own kernel thread,
//! complete with in-µISA mistraining, out-of-bounds syscall, and a timed
//! flush+reload receiver. The passive attacks hijack the *victim's*
//! speculative control flow (BTB injection at the syscall dispatch, and
//! Retbleed-style RSB underflow) into a kernel gadget that leaks the
//! victim's own secret.

use persp_attacks::active::run_active_attack;
use persp_attacks::bhi::run_bhi;
use persp_attacks::passive::{run_btb_hijack, run_retbleed};
use persp_kernel::callgraph::KernelConfig;
use perspective::scheme::Scheme;
use perspective::taxonomy::AttackOutcome;

fn show(label: &str, outcome: &AttackOutcome) {
    let verdict = match outcome {
        AttackOutcome::Leaked {
            recovered,
            expected,
        } if recovered == expected => {
            format!("LEAKED secret 0x{recovered:02x}")
        }
        AttackOutcome::Leaked { recovered, .. } => format!("noisy leak (0x{recovered:02x})"),
        AttackOutcome::Blocked => "blocked (no covert-channel signal)".to_string(),
        AttackOutcome::Inconclusive => "inconclusive".to_string(),
    };
    println!("  {label:<34} {verdict}");
}

fn main() {
    let kcfg = KernelConfig::test_small();
    let secret = 0x2A;

    for scheme in [Scheme::Unsafe, Scheme::Perspective] {
        println!("--- {} ---", scheme.name());
        let active = run_active_attack(scheme, kcfg, secret);
        show("active Spectre v1 (steals victim)", &active.outcome);
        let v2 = run_btb_hijack(scheme, kcfg, secret);
        show("passive v2 dispatch hijack", &v2.outcome);
        let rb = run_retbleed(scheme, kcfg, secret);
        show("passive Retbleed (RSB underflow)", &rb.outcome);
        let bhi = run_bhi(scheme, kcfg, secret);
        show("active BHI (bypassing eIBRS)", &bhi.outcome);
        println!();
    }

    println!("DSVs eliminate the active attack (foreign data is outside the");
    println!("attacker's data speculation view); ISVs block the passive attacks");
    println!("(the leak gadget is outside the victim's instruction speculation view).");
}
