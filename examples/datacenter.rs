//! Datacenter scenario: nginx under every evaluated defense scheme.
//!
//! ```sh
//! cargo run --release --example datacenter [app]
//! ```
//!
//! Serves requests through the simulated kernel under UNSAFE, FENCE, the
//! hardware-only baselines, deployed spot mitigations, and the three
//! Perspective variants, reporting normalized throughput (the Figure 9.3
//! metric).

use persp_kernel::callgraph::KernelConfig;
use persp_uarch::config::CoreConfig;
use persp_workloads::{apps, runner};
use perspective::scheme::Scheme;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "nginx".to_string());
    let app = apps::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown app {name}; available: httpd nginx memcached redis");
        std::process::exit(1);
    });
    let kcfg = KernelConfig::paper();
    let freq = CoreConfig::paper_default().freq_ghz;

    println!(
        "app: {} ({} requests/run)",
        app.workload.name, app.workload.iters
    );
    println!();

    let baseline = runner::measure(Scheme::Unsafe, kcfg, &app.workload);
    let base_rps = baseline.rps(app.workload.iters, freq);
    println!(
        "{:<20} {:>12.0} req/s   1.000   (kernel-time {:.0}%)",
        "UNSAFE",
        base_rps,
        100.0 * baseline.stats.kernel_time_fraction()
    );

    for scheme in [
        Scheme::Fence,
        Scheme::Dom,
        Scheme::Stt,
        Scheme::Spot,
        Scheme::PerspectiveStatic,
        Scheme::Perspective,
        Scheme::PerspectivePlusPlus,
    ] {
        let m = runner::measure(scheme, kcfg, &app.workload);
        let normalized = baseline.stats.cycles as f64 / m.stats.cycles.max(1) as f64;
        print!(
            "{:<20} {:>12.0} req/s   {:.3}",
            scheme.name(),
            m.rps(app.workload.iters, freq),
            normalized
        );
        if let Some(f) = m.fences {
            print!(
                "   (fences: {:.0}% ISV / {:.0}% DSV)",
                100.0 * f.isv_fraction(),
                100.0 * (1.0 - f.isv_fraction())
            );
        }
        println!();
    }
    println!();
    println!("paper Figure 9.3: Perspective holds ~98.8% of baseline throughput while");
    println!("FENCE loses ~5.7% on average (worst on the key-value stores).");
}
