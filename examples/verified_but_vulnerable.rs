//! Verified-but-vulnerable: the eBPF lesson of Table 4.1, rows 3–4.
//!
//! ```sh
//! cargo run --release --example verified_but_vulnerable
//! ```
//!
//! An unprivileged process loads an extension program through the
//! kernel's verifier. The verifier proves the program *architecturally*
//! memory-safe — and it is. But its bounds check is an ordinary branch,
//! and transient execution sails right past it: the attacker mistrains
//! the check, evicts the bound, and reads the victim's kernel data one
//! bit per invocation, through code the kernel itself approved.
//!
//! Perspective needs no knowledge of the injected gadget: the transient
//! access violates the attacker's data speculation view.

use persp_attacks::ebpf_attack::run_ebpf_attack;
use persp_kernel::callgraph::KernelConfig;
use persp_kernel::ebpf::{verify, EBPF_MAP_REG};
use persp_uarch::isa::{AluOp, Cond, Inst, Width, INST_BYTES};
use perspective::scheme::Scheme;
use perspective::taxonomy::AttackOutcome;

fn main() {
    let kcfg = KernelConfig::test_small();

    // 1. The verifier does its job on obviously bad programs ...
    let oob = vec![
        Inst::Alu {
            op: AluOp::Add,
            dst: 20,
            a: EBPF_MAP_REG,
            b: 10,
        },
        Inst::Load {
            dst: 21,
            base: 20,
            offset: 0,
            width: Width::B,
        },
        Inst::Ret,
    ];
    println!(
        "unguarded out-of-bounds program: {:?}",
        verify(&oob).unwrap_err()
    );

    // 2. ... and accepts the guarded version, which is architecturally
    //    safe. (The same shape the eBPF CVEs shipped.)
    let guarded = vec![
        Inst::Load {
            dst: 19,
            base: EBPF_MAP_REG,
            offset: 0,
            width: Width::Q,
        },
        Inst::Branch {
            cond: Cond::Geu,
            a: 10,
            b: 19,
            target: 5 * INST_BYTES,
        },
        Inst::Alu {
            op: AluOp::Add,
            dst: 20,
            a: EBPF_MAP_REG,
            b: 10,
        },
        Inst::Load {
            dst: 21,
            base: 20,
            offset: 0,
            width: Width::B,
        },
        Inst::Nop,
        Inst::Ret,
    ];
    verify(&guarded).expect("architecturally safe");
    println!("bounds-checked program: accepted by the verifier");
    println!();

    // 3. Transiently, "architecturally safe" is not safe.
    let secret = 0xC3;
    for scheme in [Scheme::Unsafe, Scheme::Perspective] {
        let r = run_ebpf_attack(scheme, kcfg, secret);
        let verdict = match r.outcome {
            AttackOutcome::Leaked { recovered, .. } => {
                format!("LEAKED 0x{recovered:02x}, bit by bit: {:?}", r.bits)
            }
            AttackOutcome::Blocked => "blocked (no covert-channel signal)".to_string(),
            AttackOutcome::Inconclusive => format!("inconclusive: {:?}", r.bits),
        };
        println!("{:<22} {verdict}", scheme.name());
    }
    println!();
    println!("The verifier reasons about committed execution; speculation does not");
    println!("commit. Perspective's DSVs block the injected gadget's transient access");
    println!("to foreign data without ever seeing the program (§4.2, §8.1).");
}
