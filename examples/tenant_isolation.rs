//! Multi-tenant isolation: the cloud scenario that motivates the paper.
//!
//! ```sh
//! cargo run --release --example tenant_isolation
//! ```
//!
//! Two tenants (separate cgroups) share one kernel. Every allocation the
//! kernel makes on a tenant's behalf lands in that tenant's data
//! speculation view and nobody else's — so a Spectre gadget running on
//! behalf of tenant A *cannot even transiently* read tenant B's kernel
//! data, no matter which gadget the attacker finds. The example shows
//! the ownership metadata directly, then proves the claim by running
//! the full cross-tenant attack, including the ablation where disabling
//! DSVs (keeping only instruction views) re-opens the leak.

use persp_attacks::active::{run_active_attack, run_active_attack_with_config};
use persp_attacks::lab::{AttackLab, Scheme};
use persp_kernel::callgraph::KernelConfig;
use persp_kernel::syscalls::Sysno;
use perspective::dsv::DsvClass;
use perspective::policy::PerspectiveConfig;
use perspective::taxonomy::AttackOutcome;

fn main() {
    let kcfg = KernelConfig::test_small();

    // --- 1. Ownership: what each tenant's DSV actually contains. -------
    let lab = AttackLab::new(Scheme::Perspective, kcfg, &[Sysno::Getpid]);
    let perspective = lab.perspective.as_ref().expect("perspective scheme");
    let dsv = perspective.dsv();

    let kernel = lab.kernel.borrow();
    let a = lab.attacker;
    let b = lab.victim;
    let task_a = kernel.process(a).unwrap().task_struct_va;
    let task_b = kernel.process(b).unwrap().task_struct_va;
    let syscall_table = persp_kernel::layout::SYSCALL_TABLE;
    drop(kernel);

    println!("tenant A = asid {a}, tenant B = asid {b}\n");
    println!(
        "{:<38} {:>12} {:>12}",
        "kernel object", "A's DSV", "B's DSV"
    );
    let mut table = dsv.borrow_mut();
    for (name, va) in [
        ("A's task_struct", task_a),
        ("B's task_struct", task_b),
        ("syscall dispatch table (shared)", syscall_table),
    ] {
        let for_a = table.classify(va, a);
        let for_b = table.classify(va, b);
        println!("{name:<38} {:>12} {:>12}", label(for_a), label(for_b));
    }
    drop(table);
    drop(lab);

    // --- 2. The attack: tenant A steals tenant B's secret. -------------
    println!("\ncross-tenant Spectre v1 (A mistrains a kernel gadget, reads B's data):");
    let secret = 0x5C;

    let unprotected = run_active_attack(Scheme::Unsafe, kcfg, secret);
    report("unprotected kernel", &unprotected.outcome);

    let protected = run_active_attack(Scheme::Perspective, kcfg, secret);
    report("Perspective (DSV + ISV)", &protected.outcome);

    // --- 3. Ablation: instruction views alone are not isolation. -------
    let isv_only = PerspectiveConfig {
        enforce_dsv: false,
        enforce_isv: true,
        block_unknown: false,
        ..PerspectiveConfig::default()
    };
    let ablated = run_active_attack_with_config(Scheme::Perspective, kcfg, secret, isv_only);
    report("ablated: ISV-only (no DSVs)", &ablated.outcome);

    println!("\nThe gadget A abuses sits *inside* A's own instruction view — ISVs");
    println!("never fire. What stops the leak is ownership: B's page is Foreign");
    println!("to A's data speculation view, so the transient load never issues.");
}

fn label(class: DsvClass) -> &'static str {
    match class {
        DsvClass::Owned => "owned",
        DsvClass::Shared => "shared",
        DsvClass::Foreign => "FOREIGN",
        DsvClass::Unknown => "unknown",
    }
}

fn report(label: &str, outcome: &AttackOutcome) {
    let verdict = match outcome {
        AttackOutcome::Leaked {
            recovered,
            expected,
        } if recovered == expected => format!("LEAKED 0x{recovered:02x}"),
        AttackOutcome::Leaked { recovered, .. } => format!("noisy leak (0x{recovered:02x})"),
        AttackOutcome::Blocked => "blocked".to_string(),
        AttackOutcome::Inconclusive => "inconclusive".to_string(),
    };
    println!("  {label:<32} {verdict}");
}
