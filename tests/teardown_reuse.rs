//! Process teardown and frame reuse across tenants: when a context dies,
//! its DSV must dissolve — freed frames drop to Unknown (in nobody's
//! view), and once the buddy allocator hands the same frames to a new
//! tenant they are Owned by the new tenant alone. A stale ownership bit
//! here would be a cross-tenant leak channel, so both the authoritative
//! table and the hardware-facing DSVMT mirror are checked.

use persp_kernel::callgraph::KernelConfig;
use persp_kernel::context::Process;
use persp_kernel::kernel::{Kernel, SharedKernel};
use persp_kernel::layout;
use persp_kernel::sink::{Owner, TeeSink};
use persp_kernel::syscalls::Sysno;
use persp_mem::hierarchy::{HierarchyConfig, MemoryHierarchy};
use persp_uarch::config::CoreConfig;
use persp_uarch::isa::{Assembler, Inst, REG_ARG0, REG_SYSNO};
use persp_uarch::machine::Machine;
use persp_uarch::pipeline::Core;
use persp_uarch::policy::UnsafePolicy;
use perspective::dsv::{DsvClass, DsvTable};
use perspective::dsvmt::DsvmtMirror;
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

type SharedTee = Rc<RefCell<TeeSink<DsvTable, DsvmtMirror>>>;

fn setup() -> (Core, SharedKernel, SharedTee) {
    let tee: SharedTee = Rc::new(RefCell::new(TeeSink::new(
        DsvTable::new(),
        DsvmtMirror::new(),
    )));
    let kernel = Kernel::build(KernelConfig::test_small(), tee.clone());
    let shared = SharedKernel::new(kernel);
    let mut machine = Machine::new();
    shared.borrow().install(&mut machine);
    let core = Core::new(
        CoreConfig::paper_default(),
        machine,
        MemoryHierarchy::new(HierarchyConfig::paper_default()),
        Box::new(UnsafePolicy::new()),
        Box::new(shared.clone()),
    );
    (core, shared, tee)
}

/// Run a burst of allocation-heavy syscalls as `asid`.
fn churn(core: &mut Core, shared: &SharedKernel, asid: u16) {
    let base = layout::user_text_base(u32::from(asid));
    let mut asm = Assembler::new(base);
    for _ in 0..4 {
        asm.movi(REG_ARG0, 8);
        asm.movi(REG_SYSNO, Sysno::Mmap as u16 as u64);
        asm.push(Inst::Syscall);
        asm.movi(REG_SYSNO, Sysno::Open as u16 as u64);
        asm.push(Inst::Syscall);
    }
    asm.push(Inst::Halt);
    core.machine.load_text(asm.finish());
    shared.borrow().set_current(asid, &mut core.machine);
    core.run(base, 20_000_000).expect("churn completes");
}

/// Frames currently owned by `cgroup` according to the buddy allocator.
fn frames_of(shared: &SharedKernel, cgroup: u32) -> BTreeSet<u64> {
    let kernel = shared.borrow();
    (0..kernel.buddy.num_frames())
        .filter(|&f| kernel.buddy.owner_of(f) == Some(Owner::Cgroup(cgroup)))
        .collect()
}

#[test]
fn dead_tenants_frames_leave_every_view() {
    let (mut core, shared, tee) = setup();
    let a = shared.borrow_mut().create_process(11, &mut core.machine) as u16;
    let b = shared.borrow_mut().create_process(22, &mut core.machine) as u16;
    churn(&mut core, &shared, a);

    let a_frames = frames_of(&shared, 11);
    assert!(!a_frames.is_empty(), "churn allocated frames for tenant A");

    // While A is alive, its frames are Owned for A and Foreign for B.
    {
        let mut t = tee.borrow_mut();
        let &f = a_frames.iter().next().unwrap();
        let va = layout::frame_to_va(f);
        assert_eq!(t.a.classify(va, a), DsvClass::Owned);
        assert_eq!(t.a.classify(va, b), DsvClass::Foreign);
    }

    shared.borrow_mut().destroy_process(a);

    // Every one of A's former frames is now un-owned: outside everyone's
    // view in both the table and the mirror.
    let mut t = tee.borrow_mut();
    for &f in &a_frames {
        let va = layout::frame_to_va(f);
        let class = t.a.classify(va, b);
        assert!(
            class == DsvClass::Unknown,
            "freed frame {f} should be Unknown, got {class:?}"
        );
        assert!(
            !t.b.walk(b, va).in_view,
            "mirror still shows frame {f} in a view"
        );
        assert_eq!(
            shared.borrow().buddy.owner_of(f),
            None,
            "buddy still tracks owner"
        );
    }
}

#[test]
fn reused_frames_belong_to_the_new_tenant_alone() {
    let (mut core, shared, tee) = setup();
    let a = shared.borrow_mut().create_process(11, &mut core.machine) as u16;
    churn(&mut core, &shared, a);
    let a_frames = frames_of(&shared, 11);
    shared.borrow_mut().destroy_process(a);

    // A new tenant appears and allocates; the buddy allocator hands it
    // (at least some of) the recycled frames.
    let c = shared.borrow_mut().create_process(33, &mut core.machine) as u16;
    churn(&mut core, &shared, c);
    let c_frames = frames_of(&shared, 33);
    let reused: Vec<u64> = a_frames.intersection(&c_frames).copied().collect();
    assert!(
        !reused.is_empty(),
        "allocator recycles the dead tenant's frames (A had {}, C has {})",
        a_frames.len(),
        c_frames.len()
    );

    // The recycled frames are cleanly C's: Owned for C, with the mirror
    // in agreement, and no residue of cgroup 11 anywhere.
    let mut t = tee.borrow_mut();
    for &f in &reused {
        let va = layout::frame_to_va(f);
        assert_eq!(t.a.classify(va, c), DsvClass::Owned, "frame {f} owned by C");
        assert!(
            t.b.walk(c, va).in_view,
            "mirror agrees frame {f} is in C's view"
        );
        assert_eq!(
            shared.borrow().buddy.owner_of(f),
            Some(Owner::Cgroup(33)),
            "buddy records the new owner"
        );
    }
}

#[test]
fn teardown_is_idempotent_per_asid_and_panics_on_double_free() {
    let (mut core, shared, _tee) = setup();
    let pid = shared.borrow_mut().create_process(11, &mut core.machine);
    let asid = Process::asid_of(pid);
    shared.borrow_mut().destroy_process(asid);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        shared.borrow_mut().destroy_process(asid);
    }));
    assert!(result.is_err(), "double destroy must be rejected loudly");
}
