//! Cross-crate security integration tests: the Chapter 8 security matrix
//! run end-to-end through the pipeline, kernel, attacks, and framework.

use persp_attacks::active::{active_attack_succeeds, run_active_attack};
use persp_attacks::passive::{passive_attack_succeeds, run_btb_hijack, run_retbleed};
use persp_kernel::callgraph::KernelConfig;
use perspective::scheme::Scheme;

fn kcfg() -> KernelConfig {
    KernelConfig::test_small()
}

#[test]
fn unsafe_hardware_leaks_under_every_scenario() {
    assert!(
        active_attack_succeeds(Scheme::Unsafe, kcfg()),
        "active Spectre v1"
    );
    assert!(
        passive_attack_succeeds(run_btb_hijack, Scheme::Unsafe, kcfg()),
        "passive v2 dispatch hijack"
    );
    assert!(
        passive_attack_succeeds(run_retbleed, Scheme::Unsafe, kcfg()),
        "passive Retbleed"
    );
}

#[test]
fn perspective_blocks_every_scenario() {
    // §8.1: DSVs eliminate active attacks.
    assert!(!active_attack_succeeds(Scheme::Perspective, kcfg()));
    // §8.2: ISVs block the passive PoCs.
    let v2 = run_btb_hijack(Scheme::Perspective, kcfg(), 0x3C);
    assert!(!v2.hot_lines.contains(&0x3C), "{:?}", v2.hot_lines);
    let rb = run_retbleed(Scheme::Perspective, kcfg(), 0x3C);
    assert!(!rb.hot_lines.contains(&0x3C), "{:?}", rb.hot_lines);
}

#[test]
fn every_perspective_variant_blocks_the_active_attack() {
    for scheme in [
        Scheme::PerspectiveStatic,
        Scheme::Perspective,
        Scheme::PerspectivePlusPlus,
    ] {
        let r = run_active_attack(scheme, kcfg(), 0x2A);
        assert!(
            !r.hot_lines.contains(&0x2A),
            "{}: active attack must be blocked ({:?})",
            scheme.name(),
            r.hot_lines
        );
    }
}

#[test]
fn spot_mitigations_leave_spectre_v1_open() {
    // The paper's motivation: deployed spot mitigations (KPTI+Retpoline)
    // do not address v1 gadgets at all.
    assert!(active_attack_succeeds(Scheme::Spot, kcfg()));
}

#[test]
fn hardware_only_baselines_block_the_active_attack() {
    for scheme in [Scheme::Fence, Scheme::Dom, Scheme::Stt] {
        assert!(
            !active_attack_succeeds(scheme, kcfg()),
            "{} must block the v1 PoC",
            scheme.name()
        );
    }
}

#[test]
fn active_attack_recovers_arbitrary_secret_values() {
    // The covert channel transfers the actual byte, not a fixed pattern.
    for secret in [0x01u8, 0x7F, 0xFE] {
        let r = run_active_attack(Scheme::Unsafe, kcfg(), secret);
        assert!(
            r.hot_lines.contains(&secret),
            "secret 0x{secret:02x} not recovered: {:?}",
            r.hot_lines
        );
    }
}

#[test]
fn passive_hijack_is_architecturally_invisible() {
    // The victim's architectural results are identical with and without
    // the hijack: only microarchitectural state differs.
    let r = run_btb_hijack(Scheme::Unsafe, kcfg(), 0x3C);
    // The report only exists because the run completed normally (no
    // faults, correct sysret paths).
    assert!(!r.hot_lines.is_empty());
}

/// The taxonomy's central claim (§5.1): the two attack classes need the
/// two *different* view mechanisms. Ablating DSVs re-opens the active
/// attack even with ISVs fully enforced, and ablating ISVs re-opens the
/// passive hijack even with DSVs fully enforced — neither mechanism
/// subsumes the other.
#[test]
fn ablated_perspective_reopens_exactly_one_attack_class() {
    use persp_attacks::active::run_active_attack_with_config;
    use persp_attacks::passive::run_btb_hijack_with_config;
    use perspective::policy::PerspectiveConfig;

    let isv_only = PerspectiveConfig {
        enforce_dsv: false,
        enforce_isv: true,
        block_unknown: false,
        ..PerspectiveConfig::default()
    };
    let dsv_only = PerspectiveConfig {
        enforce_dsv: true,
        enforce_isv: false,
        block_unknown: true,
        ..PerspectiveConfig::default()
    };

    // ISV-only: the v1 gadget lives *inside* the victim's ISV, so
    // instruction views alone cannot stop the data-access primitive.
    let r = run_active_attack_with_config(Scheme::Perspective, kcfg(), 0x2A, isv_only);
    assert!(
        r.hot_lines.contains(&0x2A),
        "ISV-only must leave the active attack open (got {:?})",
        r.hot_lines
    );
    // ...while the same ISV-only config still blocks the passive hijack.
    let p = run_btb_hijack_with_config(Scheme::Perspective, kcfg(), 0x3C, isv_only);
    assert!(
        !p.hot_lines.contains(&0x3C),
        "ISV-only still blocks the hijacked-dispatch gadget"
    );

    // DSV-only: the hijack's gadget reads data the victim *owns*, so data
    // views alone cannot stop the control-flow primitive.
    let p = run_btb_hijack_with_config(Scheme::Perspective, kcfg(), 0x3C, dsv_only);
    assert!(
        p.hot_lines.contains(&0x3C),
        "DSV-only must leave the passive hijack open (got {:?})",
        p.hot_lines
    );
    // ...while the same DSV-only config still blocks the active attack.
    let r = run_active_attack_with_config(Scheme::Perspective, kcfg(), 0x2A, dsv_only);
    assert!(
        !r.hot_lines.contains(&0x2A),
        "DSV-only still blocks the out-of-bounds read"
    );
}
