//! Integration tests of the *pliable interface* (§5.4): views installed,
//! shrunk, and hardened at runtime, with the hardware model picking up
//! every change.

use persp_kernel::callgraph::KernelConfig;
use persp_kernel::syscalls::Sysno;
use persp_workloads::lebench;
use persp_workloads::SimInstance;
use perspective::isv::{Isv, IsvKind};
use perspective::scheme::Scheme;

fn run_and_count_isv_fences(inst: &mut SimInstance, entry: u64) -> u64 {
    let before = inst.core.policy().counters().blocked_isv;
    inst.core.run(entry, 200_000_000).expect("run completes");
    inst.core.policy().counters().blocked_isv - before
}

#[test]
fn runtime_exclusion_takes_effect_without_rebuilding() {
    let kcfg = KernelConfig::test_small();
    let w = lebench::by_name("small-read").unwrap();
    let mut inst = SimInstance::new(Scheme::Perspective, kcfg);
    let text = inst.text_base();
    let data = inst.data_base();
    inst.core.machine.load_text(w.compile(text, data));

    // Install a full dynamic view: everything the workload executes is
    // allowed, so steady-state ISV fences are low.
    let funcs = {
        let kernel = inst.kernel.borrow();
        kernel.graph.live_reachable(&w.syscall_profile())
    };
    let (isv, hot_func) = {
        let kernel = inst.kernel.borrow();
        let isv = Isv::from_func_set(&kernel.graph, funcs, IsvKind::Dynamic);
        let hot = kernel.graph.entries[&Sysno::Read];
        (isv, hot)
    };
    let p = inst.perspective.clone().expect("perspective scheme");
    p.install_isv(inst.asid, isv);

    inst.core.run(text, 200_000_000).expect("warmup");
    let fences_full_view = run_and_count_isv_fences(&mut inst, text);

    // A CVE lands in sys_read: exclude it from the LIVE view. The next
    // run must fence heavily inside that function.
    {
        let kernel = inst.kernel.borrow();
        assert!(p.exclude_function(inst.asid, &kernel.graph, hot_func));
    }
    let fences_after_exclusion = run_and_count_isv_fences(&mut inst, text);
    assert!(
        fences_after_exclusion > fences_full_view + 5,
        "exclusion must be enforced by the hardware model: {fences_after_exclusion} vs {fences_full_view}"
    );
}

#[test]
fn installing_a_stricter_view_mid_run_reduces_the_surface() {
    let kcfg = KernelConfig::test_small();
    let inst = SimInstance::new(Scheme::Perspective, kcfg);
    let p = inst.perspective.clone().unwrap();

    let (wide, narrow) = {
        let kernel = inst.kernel.borrow();
        let g = &kernel.graph;
        (
            Isv::static_for(g, Sysno::ALL),
            Isv::static_for(g, &[Sysno::Getpid]),
        )
    };
    assert!(narrow.num_funcs() < wide.num_funcs());

    p.install_isv(inst.asid, wide);
    let before = p.with_isv(inst.asid, |v| v.unwrap().num_funcs());
    // Shrink at runtime (the "no longer needed" case of §5.4).
    p.install_isv(inst.asid, narrow);
    let after = p.with_isv(inst.asid, |v| v.unwrap().num_funcs());
    assert!(after < before);
}

#[test]
fn contexts_without_views_are_unaffected_by_other_contexts_views() {
    // Installing a strict view for one ASID must not fence another.
    let kcfg = KernelConfig::test_small();
    let w = lebench::by_name("getpid").unwrap();
    let mut inst = SimInstance::new(Scheme::Perspective, kcfg);
    let text = inst.text_base();
    let data = inst.data_base();
    inst.core.machine.load_text(w.compile(text, data));
    let p = inst.perspective.clone().unwrap();
    {
        let kernel = inst.kernel.borrow();
        // An (unrelated) context gets an empty-ish view.
        p.install_isv(9999, Isv::static_for(&kernel.graph, &[]));
    }
    inst.core.run(text, 100_000_000).expect("warmup");
    let fences = run_and_count_isv_fences(&mut inst, text);
    assert_eq!(
        fences, 0,
        "no view installed for this context → no ISV fences"
    );
}

#[test]
fn audit_hardening_composes_with_manual_exclusions() {
    let kcfg = KernelConfig::test_small();
    let inst = SimInstance::new(Scheme::Perspective, kcfg);
    let kernel = inst.kernel.borrow();
    let g = &kernel.graph;
    let base = Isv::static_for(g, Sysno::ALL);
    let flagged: Vec<_> = g
        .gadgets
        .iter()
        .map(|(f, _)| *f)
        .filter(|f| base.contains_func(*f))
        .collect();
    assert!(!flagged.is_empty());
    let mut hardened = base.hardened_with_audit(g, flagged.iter().copied());
    // Manual CVE exclusion still works on a hardened view.
    let extra = *hardened.funcs().iter().next().unwrap();
    hardened.exclude_function(g, extra);
    assert!(!hardened.contains_func(extra));
    for f in flagged {
        assert!(!hardened.contains_func(f));
    }
    assert_eq!(hardened.kind(), IsvKind::Hardened);
}
