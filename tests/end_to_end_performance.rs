//! Cross-crate performance integration tests: the orderings and
//! magnitudes Chapter 9 reports, verified on the small kernel (fast) with
//! the same harness the paper-scale figures use.

use persp_kernel::callgraph::KernelConfig;
use persp_workloads::{lebench, runner};
use perspective::scheme::Scheme;

fn kcfg() -> KernelConfig {
    KernelConfig::test_small()
}

#[test]
fn scheme_ordering_fence_worst_perspective_near_baseline() {
    let w = lebench::by_name("select").unwrap();
    let ms = runner::measure_schemes(
        &[Scheme::Unsafe, Scheme::Fence, Scheme::Perspective],
        kcfg(),
        &w,
    );
    let fence = runner::overhead(&ms[1], &ms[0]);
    let persp = runner::overhead(&ms[2], &ms[0]);
    assert!(fence > 0.10, "FENCE hurts select: {fence:.3}");
    assert!(
        persp < fence / 2.0,
        "Perspective ≪ FENCE: {persp:.3} vs {fence:.3}"
    );
}

#[test]
fn perspective_overhead_is_single_digit_percent() {
    for name in ["getpid", "small-read", "poll"] {
        let w = lebench::by_name(name).unwrap();
        let ms = runner::measure_schemes(&[Scheme::Unsafe, Scheme::Perspective], kcfg(), &w);
        let ov = runner::overhead(&ms[1], &ms[0]);
        assert!(ov < 0.10, "{name}: Perspective overhead {ov:.3} too high");
        assert!(ov > -0.05, "{name}: suspicious speedup {ov:.3}");
    }
}

#[test]
fn dom_and_stt_undercut_fence() {
    // §9.1: DOM and STT are selective versions of FENCE, so neither can
    // cost more than blocking everything. (Their relative order depends
    // on cache-warmth: DOM is free on L1 hits, STT on untainted chains;
    // on our cache-warm ROIs both sit near the baseline.)
    let w = lebench::by_name("small-read").unwrap();
    let ms = runner::measure_schemes(
        &[Scheme::Unsafe, Scheme::Fence, Scheme::Dom, Scheme::Stt],
        kcfg(),
        &w,
    );
    let unsafe_c = ms[0].stats.cycles;
    let fence = ms[1].stats.cycles;
    let dom = ms[2].stats.cycles;
    let stt = ms[3].stats.cycles;
    assert!(
        dom <= fence,
        "DOM ({dom}) is never slower than FENCE ({fence})"
    );
    assert!(
        stt <= fence,
        "STT ({stt}) is never slower than FENCE ({fence})"
    );
    assert!(
        dom >= unsafe_c && stt >= unsafe_c,
        "defenses cannot beat UNSAFE"
    );
}

#[test]
fn spot_mitigations_cost_syscall_crossings() {
    let w = lebench::by_name("getpid").unwrap();
    let ms = runner::measure_schemes(&[Scheme::Unsafe, Scheme::Spot], kcfg(), &w);
    let ov = runner::overhead(&ms[1], &ms[0]);
    assert!(
        ov > 0.05,
        "KPTI entry/exit costs must show on getpid: {ov:.3}"
    );
}

#[test]
fn hardware_caches_reach_high_hit_rates() {
    let w = lebench::by_name("small-read").unwrap();
    let m = runner::measure(Scheme::Perspective, kcfg(), &w);
    assert!(m.isv_cache.unwrap().hit_rate() > 0.80, "{:?}", m.isv_cache);
    assert!(
        m.dsvmt_cache.unwrap().hit_rate() > 0.90,
        "{:?}",
        m.dsvmt_cache
    );
}

#[test]
fn dsv_fences_dominate_the_breakdown() {
    // Table 10.1: the DSV mechanism accounts for the large majority of
    // fenced instructions on benign workloads.
    let w = lebench::by_name("small-read").unwrap();
    let m = runner::measure(Scheme::Perspective, kcfg(), &w);
    let f = m.fences.unwrap();
    assert!(f.total() > 0, "benign runs still fence (false positives)");
    assert!(
        f.isv_fraction() < 0.5,
        "DSV share must dominate: ISV fraction {:.2}",
        f.isv_fraction()
    );
}

#[test]
fn syscall_counts_are_scheme_invariant() {
    // Architectural behavior must not depend on the speculation policy.
    let w = lebench::by_name("munmap").unwrap();
    let ms = runner::measure_schemes(Scheme::MAIN, kcfg(), &w);
    for m in &ms {
        assert_eq!(
            m.stats.syscalls,
            w.total_syscalls(),
            "{} changed architectural syscall count",
            m.scheme
        );
    }
}

#[test]
fn kernel_time_dominates_microbenchmarks() {
    let w = lebench::by_name("select").unwrap();
    let m = runner::measure(Scheme::Unsafe, kcfg(), &w);
    assert!(m.stats.kernel_time_fraction() > 0.5);
}
