//! Property-based tests of the isolation invariants that Perspective's
//! security argument rests on.

use persp_kernel::context::CgroupId;
use persp_kernel::layout::{frame_to_va, va_to_frame};
use persp_kernel::mm::{BuddyAllocator, SlabAllocator};
use persp_kernel::sink::AllocSink;
use persp_kernel::sink::{NullSink, Owner};
use perspective::dsv::{DsvClass, DsvTable};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Buddy invariant: live allocations never overlap, and free/realloc
    /// conserves the total frame count.
    #[test]
    fn buddy_allocations_never_overlap(orders in prop::collection::vec(0u8..=4, 1..40)) {
        let mut buddy = BuddyAllocator::new(4096);
        let mut sink = NullSink;
        let mut live: Vec<(u64, u8)> = Vec::new();
        for order in orders {
            if let Some(f) = buddy.alloc(order, Owner::Shared, &mut sink) {
                live.push((f, order));
            }
        }
        // No two live blocks intersect.
        for (i, &(fa, oa)) in live.iter().enumerate() {
            for &(fb, ob) in &live[i + 1..] {
                let (ea, eb) = (fa + (1 << oa), fb + (1 << ob));
                prop_assert!(ea <= fb || eb <= fa, "overlap: {fa}+{oa} vs {fb}+{ob}");
            }
        }
        // Freeing restores every frame.
        let allocated: u64 = live.iter().map(|&(_, o)| 1u64 << o).sum();
        prop_assert_eq!(buddy.free_frames(), 4096 - allocated);
        for (f, _) in live {
            buddy.free(f, &mut sink);
        }
        prop_assert_eq!(buddy.free_frames(), 4096);
    }

    /// Secure-slab invariant: objects of different cgroups never share a
    /// page (the §6.1 collocation guarantee), under arbitrary alloc/free
    /// interleavings.
    #[test]
    fn secure_slab_never_collocates_cgroups(
        ops in prop::collection::vec((1u32..=4, 8usize..=1024, any::<bool>()), 1..120)
    ) {
        let mut buddy = BuddyAllocator::new(1 << 14);
        let mut slab = SlabAllocator::new(true);
        let mut sink = NullSink;
        let mut live: Vec<(u64, CgroupId)> = Vec::new();
        for (cg, size, free_one) in ops {
            if free_one && !live.is_empty() {
                let (va, _) = live.swap_remove(live.len() / 2);
                slab.kfree(va, &mut buddy, &mut sink);
            } else if let Some(va) = slab.kmalloc(size, cg, &mut buddy, &mut sink) {
                live.push((va, cg));
            }
            // Page-granularity isolation at every step.
            for (i, &(va_a, cg_a)) in live.iter().enumerate() {
                for &(va_b, cg_b) in &live[i + 1..] {
                    if va_a & !0xfff == va_b & !0xfff {
                        prop_assert_eq!(cg_a, cg_b, "cross-cgroup page sharing");
                    }
                }
            }
        }
    }

    /// DSV invariant: a context classifies an address as Owned iff the
    /// registered owner is its own cgroup; Foreign contexts never gain
    /// speculative access.
    #[test]
    fn dsv_ownership_is_mutually_exclusive(
        frames in prop::collection::vec((0u64..512, 1u32..=5), 1..60),
        query_frame in 0u64..512,
    ) {
        let mut dsv = DsvTable::new();
        for asid in 1..=5u16 {
            dsv.register_context(asid, u32::from(asid) * 10);
        }
        let mut last_owner = std::collections::HashMap::new();
        for (frame, cg_idx) in frames {
            let cg = cg_idx * 10;
            dsv.assign_frames(frame, 1, Owner::Cgroup(cg));
            last_owner.insert(frame, cg);
        }
        let va = frame_to_va(query_frame);
        match last_owner.get(&query_frame) {
            None => prop_assert_eq!(dsv.classify(va, 1), DsvClass::Unknown),
            Some(&owner_cg) => {
                for asid in 1..=5u16 {
                    let class = dsv.classify(va, asid);
                    if u32::from(asid) * 10 == owner_cg {
                        prop_assert_eq!(class, DsvClass::Owned);
                        prop_assert!(class.speculation_allowed());
                    } else {
                        prop_assert_eq!(class, DsvClass::Foreign);
                        prop_assert!(!class.speculation_allowed());
                    }
                }
            }
        }
    }

    /// Direct-map addressing is a bijection over the managed range.
    #[test]
    fn direct_map_round_trip(frame in 0u64..(1 << 24)) {
        prop_assert_eq!(va_to_frame(frame_to_va(frame)), Some(frame));
    }

    /// ISV range queries agree with the function set they were built
    /// from, for arbitrary syscall subsets.
    #[test]
    fn isv_ranges_agree_with_function_set(mask in 1u64..(1 << 20)) {
        use persp_kernel::body::emit_kernel;
        use persp_kernel::callgraph::{CallGraph, KernelConfig};
        use persp_kernel::syscalls::Sysno;
        use perspective::isv::Isv;

        // Build once per process (cached via thread_local).
        thread_local! {
            static GRAPH: CallGraph = {
                let mut g = CallGraph::generate(KernelConfig::test_small());
                emit_kernel(&mut g);
                g
            };
        }
        GRAPH.with(|g| {
            let subset: Vec<Sysno> = Sysno::ALL
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> (i % 20) & 1 == 1)
                .map(|(_, &s)| s)
                .collect();
            let isv = Isv::static_for(g, &subset);
            for f in &g.funcs {
                let inside = isv.contains_func(f.id);
                prop_assert_eq!(
                    isv.contains_va(f.entry_va),
                    inside,
                    "entry of {} disagrees with set membership",
                    f.name
                );
                let last = f.entry_va + u64::from(f.len_insts - 1) * 4;
                prop_assert_eq!(isv.contains_va(last), inside);
            }
            Ok(())
        })?;
    }
}

#[test]
fn slab_baseline_does_collocate_which_is_the_point() {
    // Negative control for the secure-slab property: the packing baseline
    // really does mix cgroups in one page.
    let mut buddy = BuddyAllocator::new(1 << 12);
    let mut slab = SlabAllocator::new(false);
    let mut sink = NullSink;
    let a = slab.kmalloc(8, 1, &mut buddy, &mut sink).unwrap();
    let b = slab.kmalloc(8, 2, &mut buddy, &mut sink).unwrap();
    assert_eq!(a & !0xfff, b & !0xfff);
}
