//! Consistency of the DSVMT tree mirror with the software DSV table: the
//! hardware-facing metadata structure (§6.2's three-level tree), fed by
//! the same allocation-event stream through a tee, must agree with the
//! authoritative ownership table on every in-view/out-of-view decision.

use persp_kernel::callgraph::KernelConfig;
use persp_kernel::kernel::{Kernel, SharedKernel};
use persp_kernel::layout;
use persp_kernel::sink::TeeSink;
use persp_kernel::syscalls::Sysno;
use persp_mem::hierarchy::{HierarchyConfig, MemoryHierarchy};
use persp_uarch::config::CoreConfig;
use persp_uarch::isa::{Assembler, Inst, REG_ARG0, REG_SYSNO};
use persp_uarch::machine::Machine;
use persp_uarch::pipeline::Core;
use persp_uarch::policy::UnsafePolicy;
use perspective::dsv::{DsvClass, DsvTable};
use perspective::dsvmt::DsvmtMirror;
use std::cell::RefCell;
use std::rc::Rc;

type SharedTee = Rc<RefCell<TeeSink<DsvTable, DsvmtMirror>>>;

fn setup() -> (Core, SharedKernel, SharedTee, u16, u16) {
    let tee: SharedTee = Rc::new(RefCell::new(TeeSink::new(
        DsvTable::new(),
        DsvmtMirror::new(),
    )));
    let kernel = Kernel::build(KernelConfig::test_small(), tee.clone());
    let shared = SharedKernel::new(kernel);
    let mut machine = Machine::new();
    shared.borrow().install(&mut machine);
    let a = shared.borrow_mut().create_process(1, &mut machine) as u16;
    let b = shared.borrow_mut().create_process(2, &mut machine) as u16;
    shared.borrow().set_current(a, &mut machine);
    let core = Core::new(
        CoreConfig::paper_default(),
        machine,
        MemoryHierarchy::new(HierarchyConfig::paper_default()),
        Box::new(UnsafePolicy::new()),
        Box::new(shared.clone()),
    );
    (core, shared, tee, a, b)
}

/// The tree must answer exactly `classify(va) ∈ {Owned, Shared}`.
fn assert_agree(tee: &SharedTee, asid: u16, va: u64, what: &str) {
    let mut t = tee.borrow_mut();
    let table_says = t.a.classify(va, asid).speculation_allowed();
    let tree_says = t.b.walk(asid, va).in_view;
    assert_eq!(tree_says, table_says, "{what} at {va:#x} for asid {asid}");
}

#[test]
fn tree_agrees_with_table_after_boot_and_process_creation() {
    let (core, shared, tee, a, b) = setup();
    let kernel = shared.borrow();
    let proc_a = kernel.process(a).unwrap().clone();
    let proc_b = kernel.process(b).unwrap().clone();
    drop(kernel);
    let _ = core;

    // Shared boot-time regions.
    for va in [
        layout::CURRENT_TASK_PTR,
        layout::SYSCALL_TABLE,
        layout::OPS_TABLES + 40,
        layout::SHARED_GLOBALS + 0x1000,
    ] {
        assert_agree(&tee, a, va, "shared region");
        assert_agree(&tee, b, va, "shared region");
    }
    // Kernel-private region: out of both views, consistently.
    assert_agree(&tee, a, layout::KDATA_KPRIV_BASE + 0x100, "kernel-private");
    // Unknown region.
    assert_agree(&tee, a, layout::KDATA_UNKNOWN_BASE + 0x100, "unknown");
    // Each other's task structs: owned/foreign.
    for &(asid, va) in &[
        (a, proc_a.task_struct_va),
        (a, proc_b.task_struct_va),
        (b, proc_b.task_struct_va),
        (b, proc_a.task_struct_va),
    ] {
        assert_agree(&tee, asid, va, "task struct");
    }
    // Spot-check the foreign case is genuinely foreign.
    let mut t = tee.borrow_mut();
    assert_eq!(t.a.classify(proc_b.task_struct_va, a), DsvClass::Foreign);
    assert!(!t.b.walk(a, proc_b.task_struct_va).in_view);
}

#[test]
fn tree_tracks_allocation_churn_during_execution() {
    let (mut core, shared, tee, a, _b) = setup();
    // Drive mmap/munmap/brk churn through the real syscall path.
    let base = layout::user_text_base(u32::from(a));
    let mut asm = Assembler::new(base);
    for _ in 0..6 {
        asm.movi(REG_ARG0, 4);
        asm.movi(REG_SYSNO, Sysno::Mmap as u16 as u64);
        asm.push(Inst::Syscall);
        asm.movi(REG_SYSNO, Sysno::Brk as u16 as u64);
        asm.push(Inst::Syscall);
        asm.movi(REG_SYSNO, Sysno::Munmap as u16 as u64);
        asm.push(Inst::Syscall);
    }
    asm.push(Inst::Halt);
    core.machine.load_text(asm.finish());
    shared.borrow().set_current(a, &mut core.machine);
    core.run(base, 20_000_000).expect("churn completes");

    // After the churn, every direct-map page's tree bit agrees with the
    // table for both contexts.
    for frame in 0..256u64 {
        let va = layout::frame_to_va(frame);
        assert_agree(&tee, a, va, "direct-map page");
    }
}

#[test]
fn huge_granules_keep_the_mirror_compact() {
    let (_core, _shared, tee, _a, _b) = setup();
    let mut t = tee.borrow_mut();
    let (l1, l2, l3) = t.b.total_footprint();
    // Boot-time regions are huge and aligned: the mirror must exploit
    // coarse granules instead of exploding into 4 KiB leaves.
    let total = l1 + l2 + l3;
    assert!(
        total < 40_000,
        "tree footprint l1={l1} l2={l2} l3={l3} should stay compact"
    );
    assert!(
        l1 > 0,
        "1 GiB entries are in use for the big shared regions"
    );
}
