//! End-to-end per-syscall ISV enforcement (§11 future-work extension):
//! the core switches the enforced instruction view at syscall dispatch.
//! `Machine::cur_sysno` is set when a `Syscall` commits and cleared at
//! `Sysret`, the policy flushes the ISV cache on each switch, and the
//! per-`(asid, sysno)` views installed through the pliable interface
//! govern exactly the dispatch windows they name.

use persp_kernel::callgraph::KernelConfig;
use persp_kernel::syscalls::Sysno;
use persp_workloads::lebench;
use persp_workloads::{measure, measure_per_syscall};
use perspective::scheme::Scheme;

fn kcfg() -> KernelConfig {
    KernelConfig::test_small()
}

/// A workload mixing syscalls with disjoint handler pools, so the
/// per-syscall views genuinely differ from their union.
fn mixed_workload() -> persp_workloads::Workload {
    let mut w = lebench::suite()
        .into_iter()
        .find(|w| w.name == "small-read")
        .expect("suite has small-read");
    let extra = lebench::suite()
        .into_iter()
        .find(|w| w.name == "getpid")
        .expect("suite has getpid");
    w.steps.extend(extra.steps);
    w.name = "read+getpid";
    w
}

#[test]
fn per_syscall_run_completes_with_correct_results() {
    let w = mixed_workload();
    let m = measure_per_syscall(Scheme::Perspective, kcfg(), &w);
    assert!(m.stats.cycles > 0, "the ROI ran");
    assert!(m.stats.syscalls > 0, "syscalls were serviced");
}

#[test]
fn per_syscall_views_fence_at_least_as_much_as_the_union_view() {
    let w = mixed_workload();
    let wide = measure(Scheme::PerspectiveStatic, kcfg(), &w);
    let narrow = measure_per_syscall(Scheme::Perspective, kcfg(), &w);
    // Strictly smaller views (plus dispatch flushes) can only add ISV
    // blocks, never remove any.
    let (nf, wf) = (narrow.fences.unwrap(), wide.fences.unwrap());
    assert!(
        nf.isv >= wf.isv,
        "narrow per-syscall views fence less than the union: {} < {}",
        nf.isv,
        wf.isv
    );
    // And the total installed view footprint really is smaller than the
    // process-wide closure.
    let (Some(narrow_funcs), Some(wide_funcs)) = (narrow.isv_funcs, wide.isv_funcs) else {
        panic!("both measurements install views");
    };
    assert!(
        narrow_funcs / w.syscall_profile().len().max(1) < wide_funcs,
        "average per-syscall view ({narrow_funcs} total) is narrower than the union ({wide_funcs})"
    );
}

#[test]
fn dispatch_switching_costs_show_up_as_extra_isv_cache_misses() {
    let w = mixed_workload();
    let wide = measure(Scheme::PerspectiveStatic, kcfg(), &w);
    let narrow = measure_per_syscall(Scheme::Perspective, kcfg(), &w);
    // The conservative flush-on-switch model must produce a lower (or at
    // best equal) ISV-cache hit rate than the stable process-wide view.
    let (nc, wc) = (narrow.isv_cache.unwrap(), wide.isv_cache.unwrap());
    assert!(
        nc.hit_rate() <= wc.hit_rate() + 1e-9,
        "flush-on-dispatch cannot improve the hit rate: {} > {}",
        nc.hit_rate(),
        wc.hit_rate()
    );
}

#[test]
fn single_syscall_workloads_behave_like_the_process_wide_view() {
    // With one syscall in the profile, the per-syscall view *is* the
    // static closure; dispatch switching adds only the per-entry flush.
    let w = lebench::suite()
        .into_iter()
        .find(|w| w.name == "getpid")
        .expect("suite has getpid");
    let wide = measure(Scheme::PerspectiveStatic, kcfg(), &w);
    let narrow = measure_per_syscall(Scheme::Perspective, kcfg(), &w);
    assert_eq!(
        narrow.isv_funcs, wide.isv_funcs,
        "one-syscall profile: identical view contents"
    );
    // Identical views may still fence differently (cold cache after each
    // dispatch flush), but blocked loads must not disappear.
    assert!(narrow.fences.unwrap().isv >= wide.fences.unwrap().isv);
}

#[test]
fn profile_syscall_numbers_match_machine_dispatch_numbers() {
    // The registry keys per-syscall views by the u16 the pipeline reads
    // from REG_SYSNO at dispatch; Sysno must round-trip through it.
    for &sys in Sysno::ALL {
        let raw = sys as u16;
        assert_eq!(Sysno::from_u16(raw), Some(sys));
    }
}
